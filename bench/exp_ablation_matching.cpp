// A1: coarsening ablation — random matching vs heavy-edge matching vs
// heavy-edge with the SC'98 balanced-edge tie-break, on hard Type-S
// instances. The balanced tie-break exists to keep coarse weight vectors
// flat so refinement retains freedom of movement; HEM exists to hide edge
// weight from the cut.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 32;
  std::printf("A1: matching-scheme ablation (k=%d, Type-S, reps=%d)\n\n",
              k, args.reps);

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{3, 5};

  Table t({"graph", "m", "scheme", "cut", "lb", "time(s)"});
  for (auto& [name, base] : make_suite(args.scale)) {
    for (const int m : ms) {
      Graph g = base;
      apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(5000 + m));
      for (const auto& [sname, scheme] :
           {std::pair<const char*, MatchScheme>{"random", MatchScheme::kRandom},
            {"heavy-edge", MatchScheme::kHeavyEdge},
            {"heavy-edge+bal", MatchScheme::kHeavyEdgeBalanced}}) {
        Options o;
        o.nparts = k;
        o.matching = scheme;
        const RunSummary s = run_average(g, o, args.reps);
        t.add_row({name, std::to_string(m), sname, Table::fmt(s.cut, 0),
                   Table::fmt(s.max_imbalance, 3), Table::fmt(s.seconds, 3)});
      }
    }
  }
  t.print();
  std::printf(
      "\nShape check: heavy-edge beats random matching on cut; the\n"
      "balanced tie-break should not hurt cut and helps balance at high m.\n");
  return 0;
}
