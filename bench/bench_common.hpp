// Shared infrastructure for the reproduction benches: the synthetic graph
// suite (stand-ins for the paper's FE meshes), simple argument parsing,
// and fixed-width table printing.
#pragma once

#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "graph/csr_graph.hpp"

namespace mcgp::bench {

struct Args {
  double scale = 1.0;   ///< multiplies the vertex counts of the suite
  int reps = 3;         ///< seeds averaged per configuration (paper: 3)
  bool quick = false;   ///< trim the parameter grid (CI-friendly)
  /// Thread counts swept by benches that honor --threads (exp_runtime).
  std::vector<int> threads = {1};
  /// Machine-readable results file for benches that emit one (exp_runtime
  /// writes per-thread-count timings here). Empty = bench default.
  std::string json_path;
  /// When non-empty, benches additionally run one traced partition per
  /// configuration and write machine-readable artifacts into this
  /// directory (see emit_trace_artifacts).
  std::string trace_dir;
  /// Run-ledger path override (--ledger=<path>). Empty = each bench's
  /// default ledger file (e.g. BENCH_runtime.json). "none" disables.
  std::string ledger_path;
  /// Attach a hardware-counter profiler (--profile) to every partition
  /// run_average / emit_trace_artifacts performs; ledger records and
  /// report artifacts then carry "profile" sections.
  bool profile = false;
};

/// Parse --scale=<f>, --reps=<n>, --quick, --threads=<a,b,...>,
/// --json=<path>, --trace-dir=<dir>, --ledger=<path|none>, --profile.
/// Unknown arguments abort with a usage message.
Args parse_args(int argc, char** argv);

/// True once parse_args saw --profile (module-level so run_average picks
/// it up without threading Args through every bench call site).
bool profile_requested();

/// The bench process's lifetime metrics registry (support/metrics.hpp).
/// run_average and emit_trace_artifacts attach it to every partition()
/// call, so one registry accumulates run counts, latency histograms, and
/// quality gauges across the whole parameter grid — the cross-run
/// aggregate a single ledger record cannot carry.
MetricsRegistry& bench_metrics();

/// Write the registry's JSON snapshot to `<ledger_path>.metrics.json`
/// (the sidecar RunRecord::metrics_snapshot points at). No-op returning
/// false when `ledger_path` is empty; prints the sidecar path on success.
bool write_metrics_sidecar(const std::string& ledger_path);

/// Where a bench appends its per-run ledger records: --ledger wins, then
/// the bench's default file; --ledger=none (empty result) disables.
std::string ledger_file(const Args& args, const std::string& bench_default);

struct SuiteGraph {
  std::string name;
  Graph graph;
};

/// The graph suite (analogue of the paper's Table 1 meshes, scaled for a
/// single-core laptop run):
///   mgen1  2D grid            (~31k vertices at scale 1)
///   mgen2  2D triangular grid (~40k)
///   mgen3  3D grid            (~43k)
///   mgen4  random geometric   (~50k)
std::vector<SuiteGraph> make_suite(double scale);

/// Larger ladder used by the runtime-scaling experiment.
std::vector<SuiteGraph> make_ladder(double scale);

/// Fixed-width plain-text table (matches the paper's tabular reporting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string fmt(double v, int prec = 3);
  static std::string fmt(sum_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

struct RunSummary {
  double cut = 0;            ///< mean cut over reps
  double max_imbalance = 0;  ///< mean of per-run worst imbalance
  double feasible_rate = 0;  ///< fraction of reps satisfying every ubvec
  double seconds = 0;        ///< mean wall time
};

/// Destination for per-run ledger records (support/run_ledger.hpp): one
/// JSONL line is appended to `path` for every individual partition call.
/// An empty path disables the ledger.
struct LedgerSink {
  std::string path;
  std::string experiment;  ///< e.g. "runtime", "quality_rb"
};

/// Partition `reps` times with seeds 1..reps and average. When `sink` is
/// given and enabled, each rep appends one run record labelled with
/// `graph_name`.
RunSummary run_average(const Graph& g, Options opts, int reps,
                       const LedgerSink* sink = nullptr,
                       const std::string& graph_name = {});

/// When args.trace_dir is set, run one traced partition of `g` and write
///   <trace_dir>/<name>.trace.json   (chrome://tracing / Perfetto)
///   <trace_dir>/<name>.events.jsonl (one JSON object per trace event)
///   <trace_dir>/<name>.report.json  (PartitionReport + counters)
/// No-op when trace_dir is empty. Returns true iff artifacts were written.
bool emit_trace_artifacts(const Args& args, const std::string& name,
                          const Graph& g, Options opts);

}  // namespace mcgp::bench
