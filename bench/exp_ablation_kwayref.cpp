// A4: k-way refinement flavor — randomized greedy boundary sweeps vs the
// gain-bucket priority-queue refiner (kmetis-style, best moves first) in
// the full MC-KW pipeline.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 32;
  std::printf("A4: k-way refinement scheme ablation (MC-KW, k=%d, reps=%d)\n\n",
              k, args.reps);

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{1, 3, 5};

  Table t({"graph", "m", "scheme", "cut", "lb", "time(s)"});
  for (auto& [name, base] : make_suite(args.scale)) {
    for (const int m : ms) {
      Graph g = base;
      if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(8000 + m));
      for (const auto& [sname, scheme] :
           {std::pair<const char*, KWayRefineScheme>{
                "sweep", KWayRefineScheme::kSweep},
            {"priority-queue", KWayRefineScheme::kPriorityQueue}}) {
        Options o;
        o.nparts = k;
        o.algorithm = Algorithm::kKWay;
        o.kway_scheme = scheme;
        const RunSummary s = run_average(g, o, args.reps);
        t.add_row({name, std::to_string(m), sname, Table::fmt(s.cut, 0),
                   Table::fmt(s.max_imbalance, 3), Table::fmt(s.seconds, 3)});
      }
    }
  }
  t.print();
  std::printf(
      "\nShape check: the priority-queue refiner matches or slightly beats\n"
      "the sweep on cut at a modest time premium (best moves commit first,\n"
      "and follow-on gains are harvested within the same pass).\n");
  return 0;
}
