// A2: initial-partitioning ablation — construction scheme (greedy growing
// vs bin packing vs mixed) and number of trials. Also demonstrates the
// paper's observation that a badly imbalanced initial partitioning is
// unlikely to be repaired during multilevel refinement (the ">20% cliff"),
// by disabling the balance-first trial selection via scheme choice.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 32;
  const idx_t side = static_cast<idx_t>(200 * std::sqrt(args.scale));
  std::printf("A2: initial-partitioning ablation (grid %dx%d, k=%d, reps=%d)\n\n",
              side, side, k, args.reps);

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{3, 5};

  Table t({"m", "scheme", "trials", "cut", "lb", "time(s)"});
  for (const int m : ms) {
    Graph g = grid2d(side, side);
    apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(6000 + m));
    for (const auto& [sname, scheme] :
         {std::pair<const char*, InitScheme>{"greedy-grow",
                                             InitScheme::kGreedyGrow},
          {"bin-pack", InitScheme::kBinPack},
          {"mixed", InitScheme::kMixed}}) {
      for (const int trials : {1, 8}) {
        Options o;
        o.nparts = k;
        o.init_scheme = scheme;
        o.init_trials = trials;
        const RunSummary s = run_average(g, o, args.reps);
        t.add_row({std::to_string(m), sname, std::to_string(trials),
                   Table::fmt(s.cut, 0), Table::fmt(s.max_imbalance, 3),
                   Table::fmt(s.seconds, 3)});
      }
    }
  }
  t.print();
  std::printf(
      "\nShape check: bin packing gives the most reliable balance, greedy\n"
      "growing the best cut; the mixed best-of-N policy should match the\n"
      "better of both. More trials buy quality for time.\n");
  return 0;
}
