// A5: the value of the multilevel paradigm itself — the paper's premise.
// Disabling coarsening (coarsen_to >= nvtxs) turns MC-RB into a flat
// FM/KL-style partitioner: initial bisection constructed directly on the
// input graph, refined in place. The multilevel version should produce
// clearly better cuts in comparable or less time, on single- and
// multi-constraint instances alike.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  const idx_t k = 16;
  std::printf("A5: multilevel vs flat (no coarsening) MC-RB (k=%d, reps=%d)\n\n",
              k, args.reps);

  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{1, 3};

  Table t({"graph", "m", "variant", "cut", "lb", "time(s)"});
  for (auto& [name, base] : make_suite(args.scale)) {
    for (const int m : ms) {
      Graph g = base;
      if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(9000 + m));
      for (const bool multilevel : {true, false}) {
        Options o;
        o.nparts = k;
        o.algorithm = Algorithm::kRecursiveBisection;
        if (!multilevel) o.coarsen_to = g.nvtxs + 1;  // disable coarsening
        const RunSummary s = run_average(g, o, args.reps);
        t.add_row({name, std::to_string(m),
                   multilevel ? "multilevel" : "flat-FM", Table::fmt(s.cut, 0),
                   Table::fmt(s.max_imbalance, 3), Table::fmt(s.seconds, 3)});
      }
    }
  }
  t.print();
  std::printf(
      "\nShape check: multilevel wins decisively on cut — flat FM only sees\n"
      "single-vertex moves and gets stuck in local minima that coarse-level\n"
      "moves (whole clusters at once) escape. This is the premise the whole\n"
      "multilevel literature, including this paper, is built on.\n");
  return 0;
}
