// E3: runtime of the multi-constraint partitioner vs the single-constraint
// baseline, scaling with graph size, and thread-count scaling of the
// task-parallel drivers.
//
// Paper-shape expectations: runtime grows roughly linearly with m (the
// analysis bounds it at O(nm)); a three-constraint partitioning costs a
// small multiple (~2x in the paper) of a single-constraint one; runtime is
// linear in |V|+|E| across the size ladder. With --threads=1,2,4,8 each
// configuration is re-run per thread count (identical partitions by
// construction; only the wall time changes).
//
// Every individual partition call appends one run-ledger record (JSONL,
// support/run_ledger.hpp) to the ledger file, so tools/mcgp_bench_diff can
// gate regressions against a committed baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);
  const std::string ledger_path = ledger_file(
      args, args.json_path.empty() ? "BENCH_runtime.json" : args.json_path);

  std::printf("E3: runtime vs constraints, graph size, and threads\n");
  std::printf("(scale=%.2f, reps=%d, k=64, Type-S weights, MC-KW and MC-RB,"
              " threads={",
              args.scale, args.reps);
  for (std::size_t i = 0; i < args.threads.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", args.threads[i]);
  }
  std::printf("})\n\n");

  const std::vector<int> ms = args.quick ? std::vector<int>{1, 3}
                                         : std::vector<int>{1, 3, 5};
  const idx_t k = 64;

  const LedgerSink sink{ledger_path, "runtime"};
  const LedgerSink* sinkp = ledger_path.empty() ? nullptr : &sink;

  for (const auto alg : {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
    const char* alg_name = alg == Algorithm::kKWay ? "MC-KW" : "MC-RB";
    std::printf("%s:\n", alg_name);
    Table t([&] {
      std::vector<std::string> headers = {"graph", "n", "m"};
      headers.push_back(args.threads.size() == 1
                            ? "time(s)"
                            : "t=" + std::to_string(args.threads[0]) + " (s)");
      for (std::size_t i = 1; i < args.threads.size(); ++i) {
        headers.push_back("t=" + std::to_string(args.threads[i]) + " (s)");
        headers.push_back("speedup");
      }
      return headers;
    }());

    for (auto& [name, base] : make_ladder(args.scale)) {
      for (const int m : ms) {
        Graph g = base;
        if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(2000 + m));
        Options o;
        o.nparts = k;
        o.algorithm = alg;

        std::vector<std::string> row = {name, std::to_string(base.nvtxs),
                                        std::to_string(m)};
        double t1 = 0;
        for (std::size_t ti = 0; ti < args.threads.size(); ++ti) {
          o.num_threads = args.threads[ti];
          const RunSummary s = run_average(g, o, args.reps, sinkp, name);
          if (ti == 0) {
            t1 = s.seconds;
            row.push_back(Table::fmt(s.seconds, 3));
          } else {
            row.push_back(Table::fmt(s.seconds, 3));
            row.push_back(Table::fmt(t1 > 0 ? t1 / s.seconds : 0.0, 2));
          }
        }
        t.add_row(std::move(row));

        // With --trace-dir, also dump per-level trace artifacts of one
        // serial run.
        Options trace_opts = o;
        trace_opts.num_threads = 1;
        emit_trace_artifacts(
            args,
            name + (alg == Algorithm::kKWay ? "-kway" : "-rb") + "-m" +
                std::to_string(m),
            g, trace_opts);
      }
    }
    t.print();
    std::printf("\n");
  }

  if (!ledger_path.empty()) {
    std::printf("appended run records to %s\n", ledger_path.c_str());
    write_metrics_sidecar(ledger_path);
    std::printf("\n");
  }

  std::printf(
      "Shape check: time should grow ~linearly down each column (graph\n"
      "size quadruples per row) and the m=3/m=1 multiple should be a small\n"
      "constant (paper: ~2x on the Cray T3E implementation). Thread counts\n"
      "beyond the physical cores cannot speed the run up; partitions are\n"
      "identical for every thread count at a fixed seed.\n");
  return 0;
}
