// E3: runtime of the multi-constraint partitioner vs the single-constraint
// baseline, and scaling with graph size.
//
// Paper-shape expectations: runtime grows roughly linearly with m (the
// analysis bounds it at O(nm)); a three-constraint partitioning costs a
// small multiple (~2x in the paper) of a single-constraint one; runtime is
// linear in |V|+|E| across the size ladder.
#include <cstdio>

#include "bench_common.hpp"
#include "gen/weight_gen.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  std::printf("E3: runtime vs number of constraints and graph size\n");
  std::printf("(scale=%.2f, reps=%d, k=64, Type-S weights, MC-KW and MC-RB)\n\n",
              args.scale, args.reps);

  const std::vector<int> ms = args.quick ? std::vector<int>{1, 3}
                                         : std::vector<int>{1, 3, 5};
  const idx_t k = 64;

  for (const auto alg : {Algorithm::kKWay, Algorithm::kRecursiveBisection}) {
    std::printf("%s:\n", alg == Algorithm::kKWay ? "MC-KW" : "MC-RB");
    Table t([&] {
      std::vector<std::string> headers = {"graph", "n", "m=1 time(s)"};
      for (std::size_t i = 1; i < ms.size(); ++i) {
        headers.push_back("m=" + std::to_string(ms[i]) + " time(s)");
        headers.push_back("x vs m=1");
      }
      return headers;
    }());

    for (auto& [name, base] : make_ladder(args.scale)) {
      std::vector<std::string> row = {name, std::to_string(base.nvtxs)};
      double t1 = 0;
      for (const int m : ms) {
        Graph g = base;
        if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, 2000 + m);
        Options o;
        o.nparts = k;
        o.algorithm = alg;
        const RunSummary s = run_average(g, o, args.reps);
        // With --trace-dir, also dump per-level trace artifacts of one run.
        emit_trace_artifacts(
            args,
            name + (alg == Algorithm::kKWay ? "-kway" : "-rb") + "-m" +
                std::to_string(m),
            g, o);
        if (m == 1) {
          t1 = s.seconds;
          row.push_back(Table::fmt(s.seconds, 3));
        } else {
          row.push_back(Table::fmt(s.seconds, 3));
          row.push_back(Table::fmt(t1 > 0 ? s.seconds / t1 : 0.0, 2));
        }
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Shape check: time should grow ~linearly down each column (graph\n"
      "size quadruples per row) and the m=3/m=1 multiple should be a small\n"
      "constant (paper: ~2x on the Cray T3E implementation).\n");
  return 0;
}
