// E4: weight-generation schemes. The paper argues that random per-vertex
// weight vectors (Type R) degenerate to the single-constraint problem by
// concentration, while structured contiguous-region weights (Type S) and
// multi-phase activity weights (Type P) genuinely exercise the
// multi-constraint machinery.
//
// Reported per scheme: the multi-constraint cut ratio vs the m=1 baseline,
// the worst imbalance achieved by the multi-constraint partitioner, and —
// the telling column — the worst imbalance a weight-BLIND partition (plain
// vertex-count balance) suffers on the same weights. Type R stays nearly
// balanced even blind; Type S / P do not.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "gen/mesh_gen.hpp"
#include "gen/weight_gen.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);

  std::printf("E4: weight-generation schemes (k=32, ub=1.05, reps=%d)\n\n",
              args.reps);

  const idx_t k = 32;
  const idx_t side = static_cast<idx_t>(200 * std::sqrt(args.scale));
  const std::vector<int> ms =
      args.quick ? std::vector<int>{3} : std::vector<int>{2, 3, 4, 5};

  // Single-constraint baseline on the bare mesh.
  Graph bare = grid2d(side, side);
  Options base_opts;
  base_opts.nparts = k;
  const RunSummary base = run_average(bare, base_opts, args.reps);
  std::printf("baseline m=1 cut: %.0f  lb: %.3f\n\n", base.cut,
              base.max_imbalance);

  Table t({"scheme", "m", "cut ratio", "lb (multi)", "lb (weight-blind)"});

  for (const int m : ms) {
    for (const auto& [sname, sid] :
         {std::pair<const char*, int>{"TypeR-random", 0},
          {"TypeS-regions", 1},
          {"TypeP-phases", 2}}) {
      Graph g = grid2d(side, side);
      switch (sid) {
        case 0:
          apply_type_r_weights(g, m, 0, 19, static_cast<std::uint64_t>(3000 + m));
          break;
        case 1:
          apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(3000 + m));
          break;
        default:
          apply_type_p_weights(g, m, 32, static_cast<std::uint64_t>(3000 + m));
          break;
      }

      Options o;
      o.nparts = k;
      const RunSummary s = run_average(g, o, args.reps);

      // Weight-blind: partition the bare mesh, evaluate on these weights.
      Options ob;
      ob.nparts = k;
      ob.seed = 1;
      const PartitionResult blind = partition(bare, ob);
      const real_t blind_lb = max_imbalance(g, blind.part, k);

      t.add_row({sname, std::to_string(m),
                 Table::fmt(base.cut > 0 ? s.cut / base.cut : 0, 2),
                 Table::fmt(s.max_imbalance, 3), Table::fmt(blind_lb, 3)});
    }
  }
  t.print();
  std::printf(
      "\nShape check: Type R stays balanced even weight-blind (easy);\n"
      "Type S / Type P blind imbalance grows with m (hard instances).\n");
  return 0;
}
