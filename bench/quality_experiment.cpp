#include "quality_experiment.hpp"

#include <cstdio>

#include "gen/weight_gen.hpp"

namespace mcgp::bench {

void run_quality_experiment(Algorithm alg, const char* title,
                            const Args& args) {
  const std::string ledger_path = ledger_file(args, "BENCH_quality.json");
  const LedgerSink sink{ledger_path,
                        alg == Algorithm::kKWay ? "quality_kway"
                                                : "quality_rb"};
  const LedgerSink* sinkp = ledger_path.empty() ? nullptr : &sink;

  std::printf("%s (scale=%.2f, reps=%d, ub=1.05, Type-S weights)\n", title,
              args.scale, args.reps);
  std::printf(
      "cut ratio = multi-constraint cut / single-constraint cut of the\n"
      "same graph and k; lb = worst per-constraint imbalance; feas =\n"
      "fraction of seeds where every constraint met its tolerance.\n\n");

  const std::vector<idx_t> ks =
      args.quick ? std::vector<idx_t>{32} : std::vector<idx_t>{8, 32, 128};
  const std::vector<int> ms =
      args.quick ? std::vector<int>{1, 3} : std::vector<int>{1, 2, 3, 4, 5};

  auto suite = make_suite(args.scale);

  Table t([&] {
    std::vector<std::string> headers = {"graph", "k"};
    for (const int m : ms) {
      if (m == 1) {
        headers.push_back("cut(m=1)");
        headers.push_back("lb(m=1)");
        headers.push_back("feas(m=1)");
      } else {
        headers.push_back("ratio(m=" + std::to_string(m) + ")");
        headers.push_back("lb(m=" + std::to_string(m) + ")");
        headers.push_back("feas(m=" + std::to_string(m) + ")");
      }
    }
    return headers;
  }());

  for (auto& [name, base] : suite) {
    for (const idx_t k : ks) {
      std::vector<std::string> row = {name, std::to_string(k)};
      double base_cut = 0;
      for (const int m : ms) {
        Graph g = base;  // copy: each m gets fresh weights
        if (m > 1) apply_type_s_weights(g, m, 16, 0, 19, static_cast<std::uint64_t>(1000 + m));
        Options o;
        o.nparts = k;
        o.algorithm = alg;
        const RunSummary s = run_average(g, o, args.reps, sinkp, name);
        if (m == 1) {
          base_cut = s.cut;
          row.push_back(Table::fmt(s.cut, 0));
        } else {
          row.push_back(Table::fmt(base_cut > 0 ? s.cut / base_cut : 0.0, 2));
        }
        row.push_back(Table::fmt(s.max_imbalance, 3));
        row.push_back(Table::fmt(s.feasible_rate, 2));
      }
      t.add_row(std::move(row));
    }
  }
  t.print();
  if (!ledger_path.empty()) {
    std::printf("\nappended run records to %s\n", ledger_path.c_str());
    write_metrics_sidecar(ledger_path);
  }
}

}  // namespace mcgp::bench
