// E1: quality of multilevel recursive bisection (MC-RB) multi-constraint
// partitionings, normalized by the single-constraint baseline.
#include "quality_experiment.hpp"

int main(int argc, char** argv) {
  using namespace mcgp;
  using namespace mcgp::bench;
  const Args args = parse_args(argc, argv);
  run_quality_experiment(Algorithm::kRecursiveBisection,
                         "E1: MC-RB multi-constraint quality", args);
  return 0;
}
