// Shared body of the E1/E2 quality experiments: for every suite graph,
// partition with m = 1..5 Type-S constraints and report the edge-cut
// normalized by the single-constraint (m = 1) cut of the same graph/k —
// the paper's headline quality metric — together with the worst
// per-constraint imbalance.
#pragma once

#include "bench_common.hpp"

namespace mcgp::bench {

/// Run the quality grid for one algorithm and print the table. Every
/// individual run appends a ledger record (experiment "quality_rb" or
/// "quality_kway") to ledger_file(args, "BENCH_quality.json").
void run_quality_experiment(Algorithm alg, const char* title, const Args& args);

}  // namespace mcgp::bench
